// Table III reproduction: power at 100 MHz of the radix-4 and radix-16
// 64x64 multipliers, combinational and two-stage pipelined, on uniform
// random operands.  Also prints the full pipeline-placement matrix the
// paper does not show (Sec. II-A only states the cut exists).
#include "bench_common.h"
#include "mult/multiplier.h"
#include "power/measure.h"

using namespace mfm;

namespace {

std::uint64_t g_events = 0;
double g_wall_s = 0.0;
double g_compile_s = 0.0;

struct Mw {
  double total;   ///< total dynamic + leakage [mW]
  double glitch;  ///< glitch-transition share of dynamic power [mW]
};

Mw run(int g, mult::PipelineCut cut, int vectors, int threads) {
  mult::MultiplierOptions o;
  o.n = 64;
  o.g = g;
  o.cut = cut;
  o.register_inputs = cut != mult::PipelineCut::None;
  const auto u = mult::build_multiplier(o);
  const auto p =
      power::measure_multiplier_parallel(u, vectors, 100.0, 0x5EED, threads);
  g_events += p.events;
  g_wall_s += p.wall_s;
  g_compile_s += p.compile_s;
  return {p.report.total_mw(), p.report.glitch_mw};
}

}  // namespace

int main() {
  bench::header("Table III -- power at 100 MHz: radix-4 vs radix-16, "
                "combinational vs 2-stage pipelined",
                "Table III (Sec. II-A)");
  const int vectors = power::bench_vectors(250);
  const int threads = power::bench_threads();
  std::printf("\nMonte-Carlo vectors per configuration: %d "
              "(override with MFM_BENCH_VECTORS)\n", vectors);
  std::printf("worker threads: %d (override with MFM_BENCH_THREADS; "
              "results are thread-count invariant)\n\n", threads);

  const Mw c4 = run(2, mult::PipelineCut::None, vectors, threads);
  const Mw c16 = run(4, mult::PipelineCut::None, vectors, threads);
  // Matched two-stage cut: registers after PPGEN for both designs.
  const Mw p4 = run(2, mult::PipelineCut::AfterPPGen, vectors, threads);
  const Mw p16 = run(4, mult::PipelineCut::AfterPPGen, vectors, threads);

  bench::Table t;
  t.row({"implementation", "radix-4 [mW]", "glitch", "radix-16 [mW]",
         "glitch", "ratio", "paper ratio"});
  t.row({"combinational", bench::fmt("%.2f", c4.total),
         bench::fmt("%.2f", c4.glitch), bench::fmt("%.2f", c16.total),
         bench::fmt("%.2f", c16.glitch), bench::fmt("%.2f", c16.total / c4.total),
         "0.94 (12.3/11.5)"});
  t.row({"2-stage pipelined", bench::fmt("%.2f", p4.total),
         bench::fmt("%.2f", p4.glitch), bench::fmt("%.2f", p16.total),
         bench::fmt("%.2f", p16.glitch),
         bench::fmt("%.2f", p16.total / p4.total), "0.89 (8.7/7.7)"});
  t.print();

  std::printf("\nPipeline-placement matrix (total mW at 100 MHz, glitch "
              "share in parens):\n");
  auto cell = [](const Mw& mw) {
    return bench::fmt("%.2f", mw.total) + " (" +
           bench::fmt("%.2f", mw.glitch) + ")";
  };
  bench::Table m;
  m.row({"cut", "radix-4", "radix-16"});
  m.row({"after recode (Fig. 5 style)",
         cell(run(2, mult::PipelineCut::AfterRecode, vectors, threads)),
         cell(run(4, mult::PipelineCut::AfterRecode, vectors, threads))});
  m.row({"after PPGEN", cell(p4), cell(p16)});
  m.row({"after TREE",
         cell(run(2, mult::PipelineCut::AfterTree, vectors, threads)),
         cell(run(4, mult::PipelineCut::AfterTree, vectors, threads))});
  m.print();
  std::printf("\nsimulation throughput: %.2f Mevents/s "
              "(%llu events in %.2f s, %d threads)\n",
              g_wall_s > 0.0 ? g_events / g_wall_s / 1e6 : 0.0,
              static_cast<unsigned long long>(g_events), g_wall_s, threads);
  std::printf("circuit compile time: %.3f s (one CompiledCircuit per "
              "measurement, shared by all shards)\n", g_compile_s);

  std::printf(
      "\nShape checks vs paper: pipelining reduces power for both units\n"
      "(glitch suppression -- the glitch column shrinks when a register\n"
      "cut truncates hazard propagation), and the radix-16 advantage\n"
      "grows when the design is pipelined.  Absolute mW differ (abstract\n"
      "library).\n");
  return 0;
}
