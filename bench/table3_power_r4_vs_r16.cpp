// Table III reproduction: power at 100 MHz of the radix-4 and radix-16
// 64x64 multipliers, combinational and two-stage pipelined, on uniform
// random operands.  Also prints the full pipeline-placement matrix the
// paper does not show (Sec. II-A only states the cut exists).
#include "bench_common.h"
#include "mult/multiplier.h"
#include "power/measure.h"

using namespace mfm;

namespace {

double run(int g, mult::PipelineCut cut, int vectors) {
  mult::MultiplierOptions o;
  o.n = 64;
  o.g = g;
  o.cut = cut;
  o.register_inputs = cut != mult::PipelineCut::None;
  const auto u = mult::build_multiplier(o);
  return power::measure_multiplier(u, vectors, 100.0).total_mw();
}

}  // namespace

int main() {
  bench::header("Table III -- power at 100 MHz: radix-4 vs radix-16, "
                "combinational vs 2-stage pipelined",
                "Table III (Sec. II-A)");
  const int vectors = power::bench_vectors(250);
  std::printf("\nMonte-Carlo vectors per configuration: %d "
              "(override with MFM_BENCH_VECTORS)\n\n", vectors);

  const double c4 = run(2, mult::PipelineCut::None, vectors);
  const double c16 = run(4, mult::PipelineCut::None, vectors);
  // Matched two-stage cut: registers after PPGEN for both designs.
  const double p4 = run(2, mult::PipelineCut::AfterPPGen, vectors);
  const double p16 = run(4, mult::PipelineCut::AfterPPGen, vectors);

  bench::Table t;
  t.row({"implementation", "radix-4 [mW]", "radix-16 [mW]", "ratio",
         "paper ratio"});
  t.row({"combinational", bench::fmt("%.2f", c4), bench::fmt("%.2f", c16),
         bench::fmt("%.2f", c16 / c4), "0.94 (12.3/11.5)"});
  t.row({"2-stage pipelined", bench::fmt("%.2f", p4),
         bench::fmt("%.2f", p16), bench::fmt("%.2f", p16 / p4),
         "0.89 (8.7/7.7)"});
  t.print();

  std::printf("\nPipeline-placement matrix (total mW at 100 MHz):\n");
  bench::Table m;
  m.row({"cut", "radix-4", "radix-16"});
  m.row({"after recode (Fig. 5 style)",
         bench::fmt("%.2f", run(2, mult::PipelineCut::AfterRecode, vectors)),
         bench::fmt("%.2f", run(4, mult::PipelineCut::AfterRecode, vectors))});
  m.row({"after PPGEN", bench::fmt("%.2f", p4), bench::fmt("%.2f", p16)});
  m.row({"after TREE",
         bench::fmt("%.2f", run(2, mult::PipelineCut::AfterTree, vectors)),
         bench::fmt("%.2f", run(4, mult::PipelineCut::AfterTree, vectors))});
  m.print();

  std::printf(
      "\nShape checks vs paper: pipelining reduces power for both units\n"
      "(glitch suppression), and the radix-16 advantage grows when the\n"
      "design is pipelined.  Absolute mW differ (abstract library).\n");
  return 0;
}
