// Sweep throughput: the signature-based SAT sweeper over real units.
//
// Runs the full sweep pipeline (netlist/sweep.h: strash seed -> ternary
// constant pre-merge -> signature refinement -> exact confirmation ->
// merge_rewrite -> re-verification) over the radix-16 64-bit multiplier
// and the multi-format unit (combinational build, fp32x1 pins -- the
// mode-specialization headline case), and reports wall time, nets/s
// through the pipeline, and the gates/area each sweep removes.  The
// sweep itself is the measured unit of work: the merged netlist's
// equivalence re-verification is included in the timing because no
// caller should ever run one without the other.
//
// Signature rounds: MFM_BENCH_VECTORS / 64 (default 8 rounds).

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/env.h"
#include "netlist/sweep.h"
#include "roster/roster.h"

using namespace mfm;
using netlist::Circuit;
using netlist::SweepOptions;
using netlist::SweepResult;
using netlist::TernaryPin;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  bench::header("sweep_throughput: signature-based SAT sweeping",
                "methodology bench (netlist sweeper, netlist/sweep.h)");

  const int vectors = common::env_positive_int("MFM_BENCH_VECTORS", 512);
  const int rounds = vectors / 64 > 0 ? vectors / 64 : 1;

  struct Case {
    std::string name;
    const Circuit* circuit;
    std::vector<TernaryPin> pins;
  };

  // Units and the fp32x1 pin set come from the shared roster catalog --
  // the same declaration mfm_sweep runs, served by the compile cache.
  roster::UnitCache cache;
  const roster::BuildMode mode = roster::BuildMode::kCombinational;
  const roster::BuiltUnit& r16 =
      cache.unit(roster::spec_index("radix16-64"), mode);
  const roster::BuiltUnit& mfu = cache.unit(roster::spec_index("mf"), mode);
  const roster::PinVariant& fp32x1 = roster::find_variant(mfu, "fp32x1");

  const Case cases[] = {
      {"radix16-64", r16.circuit.get(), {}},
      {"mf/fp32x1", mfu.circuit.get(), fp32x1.pins},
  };

  bench::Table t;
  t.row({"unit", "nets", "time [s]", "nets/s", "gates removed",
         "area removed [NAND2]", "verified"});
  for (const Case& cs : cases) {
    SweepOptions opt;
    opt.pins = cs.pins;
    opt.signature_rounds = rounds;
    const auto t0 = std::chrono::steady_clock::now();
    const SweepResult res = netlist::sweep_circuit(*cs.circuit, opt);
    const double dt = seconds_since(t0);
    t.row({cs.name, std::to_string(cs.circuit->size()),
           bench::fmt("%.2f", dt),
           bench::fmt("%.0f", static_cast<double>(cs.circuit->size()) / dt),
           std::to_string(res.report.gates_removed()),
           bench::fmt("%.1f", res.report.area_removed_nand2()),
           res.report.verified ? "yes" : "NO"});
  }
  t.print();
  std::printf("\nsignature rounds: %d (64 vectors each)\n", rounds);
  return 0;
}
