// Fig. 6 / Algorithm 1 / Sec. IV reproduction: the error-free
// binary64 -> binary32 reduction -- hardware cost, eligibility rates on
// the motivating workloads, and the energy saved when the reduction is
// wired into the multi-format unit ("improved MFmult").
#include "bench_common.h"
#include "mf/fp_reduce.h"
#include "mf/mf_unit.h"
#include "netlist/power.h"
#include "netlist/report.h"
#include "netlist/sim_event.h"
#include "netlist/timing.h"
#include "power/measure.h"
#include "power/workloads.h"

using namespace mfm;

namespace {

double measure_with_reduction(const mf::MfUnit& unit,
                              power::Workload workload, int vectors,
                              long* reduced_ops) {
  const auto& lib = netlist::TechLib::lp45();
  netlist::EventSim sim(*unit.circuit, lib);
  netlist::PowerModel pm(*unit.circuit, lib);
  power::OperandGen gen(workload);
  long reduced = 0;
  for (int i = 0; i < vectors; ++i) {
    const power::OpPair op = gen.next();
    sim.set_bus(unit.a, op.a);
    sim.set_bus(unit.b, op.b);
    sim.set_bus(unit.frmt, mf::frmt_bits(op.format));
    sim.cycle();
    if (unit.reduced != netlist::kNoNet && sim.value(unit.reduced)) ++reduced;
  }
  if (reduced_ops) *reduced_ops = reduced;
  return pm.report(sim, 100.0).total_mw();
}

}  // namespace

int main() {
  bench::header("Fig. 6 / Algorithm 1 -- binary64 to binary32 reduction",
                "Sec. IV (improved multi-format multiplier)");
  const int vectors = power::bench_vectors(250);
  const auto& lib = netlist::TechLib::lp45();

  // Standalone unit cost (Fig. 6: 5-bit CPA, 12-bit CPA, OR tree, mux).
  const mf::ReduceUnit ru = mf::build_reduce_unit();
  netlist::Sta sta(*ru.circuit, lib);
  std::printf("\nStandalone reduction unit (Fig. 6):\n");
  bench::Table c;
  c.row({"metric", "value"});
  c.row({"gates", std::to_string(ru.circuit->size())});
  c.row({"area [NAND2]",
         bench::fmt("%.0f", netlist::total_area_nand2(*ru.circuit, lib))});
  c.row({"delay [ps]", bench::fmt("%.0f", sta.max_delay_ps())});
  c.row({"delay [FO4]", bench::fmt("%.1f", sta.max_delay_fo4())});
  c.print();
  std::printf("  (fits in stage 1 beside the exponent adders, as Sec. IV\n"
              "   proposes: 'the two short additions can be done in\n"
              "   parallel with the speculative exponent computation'.)\n");

  // Eligibility rates per workload (Sec. IV motivation: small integers and
  // small fractions).
  std::printf("\nReduction eligibility by workload (%d operand pairs):\n",
              vectors);
  bench::Table e;
  e.row({"workload", "both operands reducible"});
  for (power::Workload w :
       {power::Workload::Fp64SmallInt, power::Workload::Fp64SmallFrac,
        power::Workload::Fp64Mixed, power::Workload::Fp64Random}) {
    power::OperandGen gen(w);
    long both = 0;
    for (int i = 0; i < vectors; ++i) {
      const auto op = gen.next();
      if (mf::reduce64to32(op.a) && mf::reduce64to32(op.b)) ++both;
    }
    e.row({power::workload_name(w),
           bench::fmt("%.1f %%", 100.0 * both / vectors)});
  }
  e.print();

  // Energy saved by the integrated reduction (the paper's "further energy
  // can be saved" claim, quantified).
  std::printf("\nPower at 100 MHz: baseline MFmult vs improved MFmult "
              "(reduction integrated):\n");
  const mf::MfUnit base = mf::build_mf_unit();
  mf::MfOptions impo;
  impo.with_reduction = true;
  const mf::MfUnit improved = mf::build_mf_unit(impo);

  bench::Table t;
  t.row({"fp64 workload", "baseline [mW]", "improved [mW]", "saving",
         "ops reduced"});
  for (power::Workload w :
       {power::Workload::Fp64SmallInt, power::Workload::Fp64SmallFrac,
        power::Workload::Fp64Mixed, power::Workload::Fp64Random}) {
    const double pb = measure_with_reduction(base, w, vectors, nullptr);
    long reduced = 0;
    const double pi = measure_with_reduction(improved, w, vectors, &reduced);
    t.row({power::workload_name(w), bench::fmt("%.2f", pb),
           bench::fmt("%.2f", pi),
           bench::fmt("%.1f %%", 100.0 * (pb - pi) / pb),
           bench::fmt("%.1f %%", 100.0 * reduced / vectors)});
  }
  t.print();
  std::printf(
      "\nShape checks vs paper: reduction-eligible workloads run on the\n"
      "binary32 lane and save energy; full-precision random binary64 sees\n"
      "no eligible operands and only pays the (small) checker overhead.\n");
  return 0;
}
