// Fig. 3 reproduction: the combined normalize-and-round datapath.
// Verifies that speculative dual rounding (two CPAs + normalization mux)
// equals the naive normalize-then-round reference on exhaustive significand
// sweeps, and quantifies its hardware cost against a sequential
// (normalize, then round with a second carry-propagate pass) alternative.
#include <random>

#include "bench_common.h"
#include "common/u128.h"
#include "mf/mf_model.h"
#include "mf/mf_unit.h"
#include "netlist/report.h"
#include "netlist/timing.h"

using namespace mfm;

namespace {

// Naive reference for one binary64 rounding: normalize first, then add the
// round bit at the discarded position, then renormalize on carry-out.
std::uint64_t naive_round53(u128 prod) {
  const bool hi = bit_of(prod, 105);
  const int shift = hi ? 52 : 51;       // first discarded bit
  u128 kept = prod >> (shift + 1);
  const u128 rem = prod & ((static_cast<u128>(1) << (shift + 1)) - 1);
  if (rem >= (static_cast<u128>(1) << shift)) ++kept;
  bool renorm = false;
  if (kept >> 53) {  // rounding carried into a new binade
    kept >>= 1;
    renorm = true;
  }
  return (static_cast<std::uint64_t>(kept) & ((1ull << 52) - 1)) |
         (static_cast<std::uint64_t>(hi || renorm) << 52);
}

// The speculative scheme of Fig. 3 as implemented by the datapath, with
// one correction: the normalization select reads P0's MSB.  Fig. 3 labels
// the select "P1_105", but P1 crosses the binade one half-ulp before the
// actual rounding (P0) does, mis-rounding products whose bits 104..52 are
// all ones with bit 51 clear -- the sweep below exercises exactly that
// corridor and fails if the select is taken from P1.
std::uint64_t speculative_round53(u128 prod) {
  const u128 p1 = prod + (static_cast<u128>(1) << 52);
  const u128 p0 = prod + (static_cast<u128>(1) << 51);
  const bool sel = bit_of(p0, 105);
  const u128 win = sel ? (p1 >> 53) : (p0 >> 52);
  return (static_cast<std::uint64_t>(win) & ((1ull << 52) - 1)) |
         (static_cast<std::uint64_t>(sel) << 52);
}

}  // namespace

int main() {
  bench::header("Fig. 3 -- speculative normalize-and-round datapath",
                "Fig. 3 (Sec. III-A)");

  // Equivalence sweep: random significand products, plus adversarial
  // all-ones patterns around the binade boundary.
  std::mt19937_64 rng(3);
  long checked = 0, binade_crossings = 0;
  for (int i = 0; i < 3000000; ++i) {
    const std::uint64_t ma = (1ull << 52) | (rng() & ((1ull << 52) - 1));
    const std::uint64_t mb = (1ull << 52) | (rng() & ((1ull << 52) - 1));
    u128 prod = static_cast<u128>(ma) * mb;
    if (i % 5 == 0)  // force long carry chains through the round position
      prod |= ((static_cast<u128>(1) << 104) - 1) &
              ~((static_cast<u128>(1) << 40) - 1);
    if (i % 7 == 0) {
      // The near-binade corridor: bits 104..52 all ones, bit 51 clear --
      // P1 crosses the binade, the true rounding does not.
      prod |= ((static_cast<u128>(1) << 105) - 1) &
              ~((static_cast<u128>(1) << 52) - 1);
      prod &= ~(static_cast<u128>(1) << 105);
      prod &= ~(static_cast<u128>(1) << 51);
    }
    // Keep the pattern realizable: significand products never exceed
    // (2^53-1)^2 (this bound is what makes speculative rounding safe).
    const u128 max_prod = (((static_cast<u128>(1) << 53) - 1)) *
                          (((static_cast<u128>(1) << 53) - 1));
    if (prod < (static_cast<u128>(1) << 104) || prod > max_prod) continue;
    const std::uint64_t a = naive_round53(prod);
    const std::uint64_t b = speculative_round53(prod);
    if (a != b) {
      std::printf("MISMATCH at prod=%s\n", to_hex(prod).c_str());
      return 1;
    }
    ++checked;
    if (!bit_of(prod, 105) && bit_of(prod + (static_cast<u128>(1) << 51), 105))
      ++binade_crossings;
  }
  std::printf("\nspeculative == normalize-then-round on %ld products "
              "(%ld binade-crossing round-ups included)\n",
              checked, binade_crossings);

  // Hardware cost of the scheme (paper: "an extra fast CPA and extra gates
  // to implement the CSAs" -- one FA + HAs per injection row).
  const auto& lib = netlist::TechLib::lp45();
  mf::MfOptions opt;
  opt.pipeline = mf::MfPipeline::Combinational;
  const auto u = mf::build_mf_unit(opt);
  const auto areas = netlist::area_by_module(*u.circuit, lib, 2);
  bench::Table t;
  t.row({"block", "area [NAND2]", "gates"});
  for (const char* blk : {"top/round", "top/norm"}) {
    const auto it = areas.find(blk);
    if (it != areas.end())
      t.row({blk, bench::fmt("%.0f", it->second.area_nand2),
             std::to_string(it->second.gates)});
  }
  t.print();
  std::printf("\n(top/round = 2 injection CSA rows + 2 speculative 128-bit\n"
              "CPAs, lane-splittable at bit 64; top/norm = the 2:1\n"
              "normalization muxes of Fig. 3.)\n");
  return 0;
}
