// Table IV reproduction: IEEE 754-2008 binary interchange format
// parameters, generated from the fp library's format descriptors.
#include "bench_common.h"
#include "fp/format.h"

using namespace mfm;

int main() {
  bench::header("Table IV -- binary formats in IEEE 754-2008",
                "Table IV (Sec. III)");
  bench::Table t;
  t.row({"parameter", "binary16", "binary32", "binary64", "binary128"});
  auto row = [&](const char* name, auto get) {
    std::vector<std::string> cells{name};
    for (const fp::FormatSpec* f : fp::kAllFormats)
      cells.push_back(std::to_string(get(*f)));
    t.row(cells);
  };
  row("storage (bits)", [](const fp::FormatSpec& f) { return f.storage_bits; });
  row("precision (bits)", [](const fp::FormatSpec& f) { return f.precision; });
  row("exponent length (bits)",
      [](const fp::FormatSpec& f) { return f.exp_bits; });
  row("Emax", [](const fp::FormatSpec& f) { return f.emax; });
  row("bias", [](const fp::FormatSpec& f) { return f.bias; });
  row("trailing significand f (bits)",
      [](const fp::FormatSpec& f) { return f.trailing_bits; });
  t.print();
  std::printf("\nAll values match IEEE 754-2008 / paper Table IV by "
              "construction;\nthe gtest suite re-checks them "
              "(fp_format_test.cpp).\n");
  return 0;
}
