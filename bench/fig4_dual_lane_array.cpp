// Fig. 4 reproduction: the partial-product array arrangement for two
// parallel binary32 multiplications -- dot diagram of the sectioned array,
// lane occupancy statistics, and an end-to-end lane-independence fuzz.
#include <random>

#include "bench_common.h"
#include "mf/mf_model.h"
#include "mf/mf_unit.h"
#include "netlist/sim_level.h"

using namespace mfm;

int main() {
  bench::header("Fig. 4 -- array arrangement for two binary32 "
                "multiplications",
                "Fig. 4 (Sec. III-B)");

  // Dot diagram of the dual-mode geometry (lower lane rows 0..6 at column
  // 4i, upper lane rows 8..14 at column 4i+32; rows 7/15/16 empty).
  std::printf("\nDual-mode dot diagram (columns 127..0; x = enc' bit, "
              "s = +s dot, n = !s dot):\n\n");
  for (int row = 0; row < 17; ++row) {
    char line[129];
    for (int i = 0; i < 128; ++i) line[i] = '.';
    line[128] = '\0';
    auto put = [&](int col, char ch) {
      if (col >= 0 && col < 128) line[127 - col] = ch;
    };
    const bool low = row <= 6, up = row >= 8 && row <= 14;
    if (low || up) {
      const int off = 4 * row + (up ? 32 : 0);
      for (int j = 0; j < 27; ++j) put(off + j, 'x');
      put(off, 's');
      put(off + 27, 'n');
    }
    std::printf("  row %2d  %s\n", row, line);
  }
  std::printf("\n  (lower products occupy columns 47..0, upper products\n"
              "   columns 111..64; the tree and CPAs kill any carry into\n"
              "   column 64 in dual mode -- \"sign-ext. correction\" per\n"
              "   lane exactly as sketched in the paper's Fig. 4.)\n");

  // Lane occupancy statistics.
  std::printf("\nArray statistics:\n");
  bench::Table t;
  t.row({"mode", "active rows", "columns used", "dots (enc'+s+!s)"});
  t.row({"int64 / binary64", "17", "0..127", std::to_string(17 * 67 + 2 * 17)});
  t.row({"dual binary32", "14", "0..55, 64..119",
         std::to_string(14 * 27 + 3 * 14)});
  t.print();

  // End-to-end lane isolation fuzz on the netlist.
  mf::MfOptions opt;
  opt.pipeline = mf::MfPipeline::Combinational;
  const auto u = mf::build_mf_unit(opt);
  netlist::LevelSim sim(*u.circuit);
  std::mt19937_64 rng(4);
  auto fp32 = [&rng] {
    return ((rng() & 1) << 31) |
           (static_cast<std::uint64_t>(64 + rng() % 127) << 23) |
           (rng() & 0x7FFFFF);
  };
  long trials = 0, violations = 0;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t al = fp32(), bl = fp32();
    const std::uint64_t a = (fp32() << 32) | al, b = (fp32() << 32) | bl;
    sim.set_port("a", a);
    sim.set_port("b", b);
    sim.set_port("frmt", 2);
    sim.eval();
    const std::uint32_t lo =
        static_cast<std::uint32_t>(sim.read_port("ph"));
    // New upper operands, same lower ones.
    sim.set_port("a", (fp32() << 32) | al);
    sim.set_port("b", (fp32() << 32) | bl);
    sim.eval();
    ++trials;
    if (static_cast<std::uint32_t>(sim.read_port("ph")) != lo) ++violations;
  }
  std::printf("\nLane-independence fuzz: %ld trials, %ld violations "
              "(must be 0)\n", trials, violations);
  return violations != 0;
}
