// Rewrite throughput: the declarative pattern-match-and-rewrite engine
// over real units.
//
// Runs the fixpoint rewrite pass (netlist/rewrite.h: compile ->
// collect_matches over default_rewrite_rules -> replace_cone, iterated
// to fixpoint, then the equivalence re-proof against the input) over
// the 8x8 teaching multiplier, the radix-16 64-bit multiplier, and the
// multi-format unit (combinational build), and reports wall time,
// nets/s through the matcher, cone edits applied, and the area each
// pass removes.  The re-verification is included in the timing because
// no caller should ever run one without the other.
//
// Verification vectors: MFM_BENCH_VECTORS (default 512).

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/env.h"
#include "netlist/rewrite.h"
#include "roster/roster.h"

using namespace mfm;
using netlist::Circuit;
using netlist::RewriteOptions;
using netlist::RewriteResult;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  bench::header("opt_throughput: declarative pattern rewriting",
                "methodology bench (rewrite engine, netlist/rewrite.h)");

  const int vectors = common::env_positive_int("MFM_BENCH_VECTORS", 512);

  // Units come from the shared roster catalog -- the same declaration
  // mfm_opt runs, served by the compile cache.
  roster::UnitCache cache;
  const roster::BuildMode mode = roster::BuildMode::kCombinational;

  struct Case {
    std::string name;
    const Circuit* circuit;
  };
  const Case cases[] = {
      {"mult8", cache.unit(roster::spec_index("mult8"), mode).circuit.get()},
      {"radix16-64",
       cache.unit(roster::spec_index("radix16-64"), mode).circuit.get()},
      {"mf", cache.unit(roster::spec_index("mf"), mode).circuit.get()},
  };

  bench::Table t;
  t.row({"unit", "nets", "time [s]", "nets/s", "edits", "iters",
         "area removed [NAND2]", "verified"});
  for (const Case& cs : cases) {
    RewriteOptions opt;
    opt.verify_vectors = vectors;
    const auto t0 = std::chrono::steady_clock::now();
    const RewriteResult res = netlist::optimize_circuit(*cs.circuit, opt);
    const double dt = seconds_since(t0);
    t.row({cs.name, std::to_string(cs.circuit->size()),
           bench::fmt("%.2f", dt),
           bench::fmt("%.0f", static_cast<double>(cs.circuit->size()) / dt),
           std::to_string(res.report.applied),
           std::to_string(res.report.iterations),
           bench::fmt("%.1f", res.report.area_removed_nand2()),
           res.report.verified ? "yes" : "NO"});
  }
  t.print();
  std::printf("\nverification vectors: %d\n", vectors);
  return 0;
}
