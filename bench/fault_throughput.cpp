// Fault-injection throughput: lane-masked campaign vs copy-circuit.
//
// The seed repo injected stuck-at faults by rebuilding the whole circuit
// per fault and simulating one scalar vector at a time, which is why its
// test could only afford a few dozen sampled victims.  The campaign in
// netlist/fault.h instead batches 63 faults per PackSim pass over one
// shared compilation (lane 0 = fault-free reference).  This bench runs
// both injectors over the identical fault list and vector set on the 8x8
// multiplier -- early exit and undetected-fault classification disabled
// so both sides do the full nominal fault x vector work -- and reports
// faults*vectors/s each way plus the speedup (expected well above 50x:
// ~63x from the lanes times the avoided per-fault rebuild/recompile).
//
// Vector count: MFM_BENCH_VECTORS (default 256).

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/env.h"
#include "netlist/compiled.h"
#include "netlist/fault.h"
#include "netlist/sim_level.h"
#include "roster/roster.h"

using namespace mfm;
using netlist::CompiledCircuit;
using netlist::FaultSite;
using netlist::FaultVectors;
using netlist::LevelSim;
using netlist::NetId;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  bench::header("fault_throughput: lane-masked campaign vs copy-circuit",
                "methodology bench (fault-injection engine, netlist/fault.h)");

  const int vectors = common::env_positive_int("MFM_BENCH_VECTORS", 256);

  // The unit and its shared compilation come from the roster cache --
  // the same mult8 declaration the mfm_faults CI gate runs.
  roster::UnitCache cache;
  const std::size_t mult8 = roster::spec_index("mult8");
  const netlist::Circuit& c =
      *cache.unit(mult8, roster::BuildMode::kPipelined).circuit;
  const CompiledCircuit& cc =
      cache.compiled(mult8, roster::BuildMode::kPipelined);

  const std::vector<FaultSite> sites = netlist::enumerate_stuck_faults(c);
  const FaultVectors fv(c, static_cast<std::size_t>(vectors), /*seed=*/0xFA);
  const std::uint64_t budget =
      static_cast<std::uint64_t>(sites.size()) * fv.count();

  std::printf("unit: 8x8 radix-16 multiplier (%zu gates, %zu fault sites, "
              "%zu vectors/fault)\n\n",
              c.size(), sites.size(), fv.count());

  // Output nets: the clone preserves gate ids and copies no ports, so the
  // source circuit's port buses index both machines.
  std::vector<NetId> outs;
  for (const auto& [name, bus] : c.out_ports()) {
    (void)name;
    outs.insert(outs.end(), bus.begin(), bus.end());
  }

  // --- lane-masked campaign, full nominal work (no early exit) ----------
  netlist::FaultCampaignOptions opt;
  opt.classify_undetected = false;
  opt.early_exit = false;
  auto t0 = std::chrono::steady_clock::now();
  const netlist::FaultCampaignReport rep =
      run_fault_campaign(cc, sites, fv, opt);
  const double t_pack = seconds_since(t0);

  // --- copy-circuit reference: rebuild + recompile + scalar sim per fault
  std::size_t slow_detected = 0;
  t0 = std::chrono::steady_clock::now();
  {
    // Fault-free reference responses, once.
    LevelSim ref(cc);
    std::vector<std::vector<bool>> golden(fv.count());
    for (std::size_t v = 0; v < fv.count(); ++v) {
      for (std::size_t i = 0; i < fv.inputs().size(); ++i)
        ref.set(fv.inputs()[i], fv.bit(v, i));
      ref.eval();
      golden[v].reserve(outs.size());
      for (const NetId o : outs) golden[v].push_back(ref.value(o));
    }
    for (const FaultSite& s : sites) {
      const auto faulty =
          netlist::clone_with_stuck(c, s.net, s.kind == netlist::FaultKind::kStuckAt1);
      LevelSim sim(*faulty);  // compiles the clone, as the seed test did
      bool caught = false;
      // Full vector budget per fault (no early exit), mirroring the
      // campaign's early_exit=false: both sides apply exactly
      // sites*vectors fault-vectors, so the rates divide cleanly.
      for (std::size_t v = 0; v < fv.count(); ++v) {
        for (std::size_t i = 0; i < fv.inputs().size(); ++i)
          sim.set(fv.inputs()[i], fv.bit(v, i));
        sim.eval();
        for (std::size_t oi = 0; oi < outs.size(); ++oi)
          if (sim.value(outs[oi]) != golden[v][oi]) {
            caught = true;
            break;
          }
      }
      if (caught) ++slow_detected;
    }
  }
  const double t_copy = seconds_since(t0);

  if (rep.detected != slow_detected)
    std::printf("WARNING: detected-count mismatch (campaign %zu, copy-circuit "
                "%zu)\n\n",
                rep.detected, slow_detected);

  bench::Table t;
  t.row({"injector", "fault-vectors", "time [s]", "Mfv/s"});
  t.row({"lane-masked campaign", std::to_string(rep.fault_vectors),
         bench::fmt("%.3f", t_pack),
         bench::fmt("%.2f", 1e-6 * static_cast<double>(rep.fault_vectors) / t_pack)});
  t.row({"copy-circuit (seed)", std::to_string(budget),
         bench::fmt("%.3f", t_copy),
         bench::fmt("%.2f", 1e-6 * static_cast<double>(budget) / t_copy)});
  t.print();

  const double pack_rate = static_cast<double>(rep.fault_vectors) / t_pack;
  const double copy_rate = static_cast<double>(budget) / t_copy;
  std::printf("\nspeedup (faults*vectors/s): %.1fx  (detected %zu/%zu both "
              "ways)\n",
              pack_rate / copy_rate, rep.detected, sites.size());
  return 0;
}
