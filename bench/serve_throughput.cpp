// Serve throughput: the batched multiplication service vs scalar
// simulation.
//
//   serve_throughput [--unit=NAME] [--ops=N] [--batch=N] [--threads=N]
//                    [--min-speedup=X]
//
// Measures sustained multiplications/second on one roster unit three
// ways: the scalar LevelSim baseline (one eval() per operand pair --
// what every consumer did before the serve layer), and the
// MultiplyService at 1, 2, 4, ... up to --threads workers.  A single
// worker already packs 64 operand pairs per PackSim eval() pass, so
// the single-thread speedup isolates the word-level packing win from
// thread scaling; CI gates it with --min-speedup (the serve layer must
// sustain >= 50x the scalar rate at --threads=1).  Thread scaling on
// top of that is only visible on multi-core hosts.
//
// Exit status is nonzero when the single-worker speedup falls below
// --min-speedup (default: report only).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/u128.h"
#include "netlist/sim_level.h"
#include "roster/roster.h"
#include "serve/serve.h"

using namespace mfm;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool parse_flag(const char* arg, const char* name, long& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  char* end = nullptr;
  const long v = std::strtol(arg + n, &end, 10);
  if (end == arg + n || *end != '\0' || v < 1) {
    std::fprintf(stderr, "serve_throughput: bad value in '%s'\n", arg);
    std::exit(2);
  }
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unit = "radix16-64";
  long ops = 16384;
  long batch = 256;
  long max_threads = 4;
  double min_speedup = -1.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long v = 0;
    if (std::strncmp(arg, "--unit=", 7) == 0) {
      unit = arg + 7;
    } else if (parse_flag(arg, "--ops=", v)) {
      ops = v;
    } else if (parse_flag(arg, "--batch=", v)) {
      batch = v;
    } else if (parse_flag(arg, "--threads=", v)) {
      max_threads = v;
    } else if (std::strncmp(arg, "--min-speedup=", 14) == 0) {
      char* end = nullptr;
      min_speedup = std::strtod(arg + 14, &end);
      if (end == arg + 14 || *end != '\0' || min_speedup <= 0.0) {
        std::fprintf(stderr, "serve_throughput: bad value in '%s'\n", arg);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: serve_throughput [--unit=NAME] [--ops=N] "
                   "[--batch=N] [--threads=N] [--min-speedup=X]\n");
      return 2;
    }
  }

  bench::header("serve_throughput: batched multiplication service",
                "methodology bench (serve/serve.h, 64-lane packing)");

  roster::UnitCache cache;
  const std::size_t spec = roster::spec_index(unit);
  const roster::BuildMode mode = roster::BuildMode::kCombinational;
  const roster::BuiltUnit& built = cache.unit(spec, mode);
  const netlist::Circuit& c = *built.circuit;
  const serve::OperandPorts io = serve::resolve_operand_ports(c);
  const std::string out_port = c.out_ports().begin()->first;
  const bool has_ctrl = !io.ctrl.empty();

  std::mt19937_64 rng(0x5EBE);
  std::vector<serve::Op> stream(static_cast<std::size_t>(ops));
  for (serve::Op& op : stream) {
    op.a = rng();
    op.b = rng();
    op.ctrl = has_ctrl ? rng() % 3 : 0;
  }

  // Scalar baseline: one LevelSim eval() per operand pair, time-boxed
  // (the whole point is that this is slow).
  u128 checksum = 0;
  std::size_t scalar_n = 0;
  double scalar_dt = 0.0;
  {
    netlist::LevelSim sim(c);
    const auto t0 = std::chrono::steady_clock::now();
    while ((scalar_dt = seconds_since(t0)) < 0.5 && scalar_n < stream.size()) {
      const serve::Op& op = stream[scalar_n++];
      sim.set_port(io.a, op.a);
      if (!io.b.empty()) sim.set_port(io.b, op.b);
      if (has_ctrl) sim.set_port(io.ctrl, op.ctrl);
      sim.eval();
      checksum ^= sim.read_port(out_port);
    }
    scalar_dt = seconds_since(t0);
  }
  const double scalar_rate = static_cast<double>(scalar_n) / scalar_dt;

  bench::Table t;
  t.row({"engine", "threads", "mults", "time [s]", "mult/s", "speedup"});
  t.row({"LevelSim (scalar)", "1", std::to_string(scalar_n),
         bench::fmt("%.2f", scalar_dt), bench::fmt("%.0f", scalar_rate),
         "1.0"});

  double speedup_t1 = 0.0;
  for (long threads = 1; threads <= max_threads; threads *= 2) {
    serve::ServiceOptions opt;
    opt.threads = static_cast<int>(threads);
    serve::MultiplyService service(cache, opt);

    // Warm the per-worker simulators so the timed run measures serving,
    // not the one-time circuit compile.
    service
        .submit(serve::Request{spec, "", {stream[0]}})
        .get();

    std::vector<std::future<serve::BatchResult>> results;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t base = 0; base < stream.size();
         base += static_cast<std::size_t>(batch)) {
      const std::size_t n = std::min<std::size_t>(
          static_cast<std::size_t>(batch), stream.size() - base);
      serve::Request req;
      req.spec = spec;
      req.ops.assign(stream.begin() + static_cast<std::ptrdiff_t>(base),
                     stream.begin() + static_cast<std::ptrdiff_t>(base + n));
      results.push_back(service.submit(std::move(req)));
    }
    for (auto& f : results) {
      const serve::BatchResult r = f.get();
      if (!r.ok()) {
        std::fprintf(stderr, "serve_throughput: request failed: %s\n",
                     r.error.c_str());
        return 1;
      }
      checksum ^= r.port(out_port).back();
    }
    const double dt = seconds_since(t0);
    service.shutdown();

    const double rate = static_cast<double>(stream.size()) / dt;
    const double speedup = rate / scalar_rate;
    if (threads == 1) speedup_t1 = speedup;
    t.row({"MultiplyService", std::to_string(threads),
           std::to_string(stream.size()), bench::fmt("%.2f", dt),
           bench::fmt("%.0f", rate), bench::fmt("%.1f", speedup)});
  }

  t.print();
  std::printf("\nunit: %s (combinational), batch %ld ops/request\n",
              unit.c_str(), batch);
  std::printf("checksum: %s\n", to_hex(checksum).c_str());
  std::printf(
      "single-worker speedup is the 64-lane packing win; thread scaling\n"
      "shows only on multi-core hosts.\n");

  if (min_speedup > 0.0 && speedup_t1 < min_speedup) {
    std::fprintf(stderr,
                 "serve_throughput: single-worker speedup %.1fx below "
                 "--min-speedup=%.1f\n",
                 speedup_t1, min_speedup);
    return 1;
  }
  return 0;
}
