// Ablation: the radix-8 design point the paper dismisses ("it also needs
// the pre-computation of 3X, but its reduction tree is larger than the
// radix-16 tree", Sec. II-A) -- full radix-4/8/16 sweep.
#include "bench_common.h"
#include "mult/multiplier.h"
#include "netlist/power.h"
#include "netlist/timing.h"
#include "power/measure.h"

using namespace mfm;

int main() {
  bench::header("Ablation -- radix sweep (radix-4 / radix-8 / radix-16)",
                "Sec. II-A radix-8 discussion");
  const int vectors = power::bench_vectors(200);
  const auto& lib = netlist::TechLib::lp45();

  bench::Table t;
  t.row({"design", "PPs", "tree stages", "delay [ps]", "area [NAND2]",
         "comb. power [mW]"});
  for (int g : {2, 3, 4}) {
    mult::MultiplierOptions o;
    o.n = 64;
    o.g = g;
    const auto u = mult::build_multiplier(o);
    netlist::Sta sta(*u.circuit, lib);
    netlist::PowerModel pm(*u.circuit, lib);
    const auto p = power::measure_multiplier(u, vectors, 100.0);
    t.row({std::string("radix-") + std::to_string(1 << g),
           std::to_string(u.pp_rows), std::to_string(u.tree_stages),
           bench::fmt("%.0f", sta.max_delay_ps()),
           bench::fmt("%.0f", pm.area_nand2()),
           bench::fmt("%.2f", p.total_mw())});
  }
  t.print();
  std::printf(
      "\nShape checks vs paper: radix-8 pays the odd-multiple CPA like\n"
      "radix-16 (3X) but still reduces 23 rows instead of 17 -- a larger\n"
      "tree for the same pre-computation burden, which is exactly why the\n"
      "paper skips it.\n");
  return 0;
}
