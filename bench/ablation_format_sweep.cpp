// Ablation: fixed-format FP multipliers (binary16/32/64, from the generic
// generator) versus the shared multi-format unit -- what does format
// flexibility cost?  This quantifies the implicit trade the paper makes by
// building one 64x64 array for everything instead of dedicated units.
#include "bench_common.h"
#include "mf/mf_unit.h"
#include "mult/fp_multiplier.h"
#include "netlist/power.h"
#include "netlist/sim_event.h"
#include "netlist/timing.h"
#include "power/measure.h"
#include "power/workloads.h"

using namespace mfm;

namespace {

struct Cost {
  double area_nand2;
  double delay_ps;
  double mw100;
  double glitch_mw100;
};

Cost measure_fixed(const fp::FormatSpec& fmt, int vectors) {
  const auto& lib = netlist::TechLib::lp45();
  mult::FpMultiplierOptions o;
  o.format = fmt;
  const auto u = mult::build_fp_multiplier(o);
  netlist::Sta sta(*u.circuit, lib);
  netlist::PowerModel pm(*u.circuit, lib);
  netlist::EventSim sim(*u.circuit, lib);
  std::mt19937_64 rng(fmt.storage_bits);
  const int margin = fmt.exp_bits >= 8 ? (1 << (fmt.exp_bits - 2)) : 4;
  for (int i = 0; i < vectors; ++i) {
    auto rnd = [&] {
      const u128 frac =
          (static_cast<u128>(rng()) << 64 | rng()) & fmt.frac_mask();
      const u128 exp = static_cast<u128>(
          margin + static_cast<int>(
                       rng() % static_cast<unsigned>(
                                   static_cast<int>(fmt.exp_mask()) - 1 -
                                   2 * margin + 1)));
      return ((static_cast<u128>(rng()) & 1) << (fmt.storage_bits - 1)) |
             (exp << fmt.trailing_bits) | frac;
    };
    sim.set_bus(u.a, rnd());
    sim.set_bus(u.b, rnd());
    sim.cycle();
  }
  const netlist::PowerReport rep = pm.report(sim, 100.0);
  return {pm.area_nand2(), sta.max_delay_ps(), rep.total_mw(), rep.glitch_mw};
}

}  // namespace

int main() {
  bench::header("Ablation -- fixed-format multipliers vs the shared "
                "multi-format unit",
                "cost of format flexibility (Sec. III design choice)");
  const int vectors = power::bench_vectors(200);
  const int threads = power::bench_threads();
  std::printf("\nMonte-Carlo vectors per unit: %d, worker threads: %d\n"
              "(override with MFM_BENCH_VECTORS / MFM_BENCH_THREADS)\n\n",
              vectors, threads);
  const auto& lib = netlist::TechLib::lp45();

  bench::Table t;
  t.row({"unit", "area [NAND2]", "comb. delay [ps]", "power @100MHz [mW]",
         "glitch [mW]"});
  for (const fp::FormatSpec* f :
       {&fp::kBinary16, &fp::kBinary32, &fp::kBinary64}) {
    const Cost c = measure_fixed(*f, vectors);
    t.row({std::string("fixed ") + std::string(f->name),
           bench::fmt("%.0f", c.area_nand2), bench::fmt("%.0f", c.delay_ps),
           bench::fmt("%.2f", c.mw100), bench::fmt("%.2f", c.glitch_mw100)});
  }
  // The multi-format unit, combinational for a like-for-like delay column.
  mf::MfOptions comb;
  comb.pipeline = mf::MfPipeline::Combinational;
  const auto mfu = mf::build_mf_unit(comb);
  netlist::Sta sta(*mfu.circuit, lib);
  netlist::PowerModel pm(*mfu.circuit, lib);
  const auto p64 = power::measure_mf_parallel(
      mfu, power::Workload::Fp64Random, vectors, 880.0, 1, threads);
  t.row({"MFmult (int64+fp64+2xfp32)", bench::fmt("%.0f", pm.area_nand2()),
         bench::fmt("%.0f", sta.max_delay_ps()),
         bench::fmt("%.2f (fp64 stream)", p64.mw_100),
         bench::fmt("%.2f", p64.at_100mhz.glitch_mw)});
  t.print();
  std::printf("\nMFmult stream throughput: %.2f Mevents/s "
              "(%llu events in %.2f s, %d threads)\n",
              p64.events_per_s() / 1e6,
              static_cast<unsigned long long>(p64.events), p64.wall_s,
              threads);

  std::printf(
      "\nReadout: one shared 64x64 radix-16 array plus formatters costs\n"
      "roughly a binary64 unit (the dominant datapath) -- far less than\n"
      "separate binary64 + 2x binary32 + int64 units would.  A dedicated\n"
      "binary32 multiplier is ~4x smaller, which is the price a design\n"
      "pays for issuing fp32 work through the 64-bit array when it never\n"
      "needs the wider formats.\n");
  return 0;
}
