// Fig. 1 / Fig. 2 reproduction: structure of the radix-16 PP generation
// and of the complete multiplier -- recoder digit statistics, multiple
// set, per-block gate inventory and settle times along the Fig. 2
// dataflow.
#include <random>

#include "arith/recode.h"
#include "bench_common.h"
#include "mult/multiplier.h"
#include "netlist/report.h"
#include "netlist/timing.h"

using namespace mfm;

int main() {
  bench::header("Fig. 1 & Fig. 2 -- radix-16 PP generation and multiplier "
                "structure",
                "Fig. 1, Fig. 2 (Sec. II)");
  const auto& lib = netlist::TechLib::lp45();
  const auto unit = mult::build_radix16_64();

  std::printf("\nRecoding (carry-free, minimally redundant {-8..8}):\n");
  std::printf("  64-bit multiplier -> %d radix-16 digits "
              "(16 groups + top transfer)\n", unit.pp_rows);

  // Digit distribution over random operands: every digit value must occur,
  // with the transfer digit construction visible in the statistics.
  std::mt19937_64 rng(1);
  long hist[17] = {0};
  const int samples = 20000;
  for (int i = 0; i < samples; ++i)
    for (const auto& d : arith::recode_radix16(rng()))
      ++hist[d.value + 8];
  std::printf("\nDigit-value distribution over %d random operands "
              "(percent):\n  ", samples);
  for (int v = -8; v <= 8; ++v)
    std::printf("%+d:%.1f%s", v,
                100.0 * hist[v + 8] / (17.0 * samples),
                v == 8 ? "\n" : "  ");

  std::printf("\nPre-computed multiples (Fig. 1: three CPAs + wiring):\n");
  std::printf("  3X = X + 2X, 5X = X + 4X, 7X = 8X - X (CPAs); "
              "2X, 4X, 6X, 8X by wiring\n");

  std::printf("\nPer-block inventory (Fig. 2 dataflow order):\n");
  bench::Table t;
  t.row({"block", "gates", "area [NAND2]", "settles at [ps]"});
  netlist::Sta sta(*unit.circuit, lib);
  const auto areas = netlist::area_by_module(*unit.circuit, lib, 2);
  for (const char* blk :
       {"top/recoder", "top/precomp", "top/ppgen", "top/tree", "top/cpa"}) {
    const auto it = areas.find(blk);
    if (it == areas.end()) continue;
    t.row({blk, std::to_string(it->second.gates),
           bench::fmt("%.0f", it->second.area_nand2),
           bench::fmt("%.0f", sta.module_settle_ps(blk))});
  }
  t.print();

  std::printf("\nPPGEN row: 8:1 one-hot mux (AO22 pairs + OR tree) per bit,"
              "\nXOR row for negative digits, sign-extension-reduction dots"
              "\n(+s at row LSB, !s above the row, shared constant).\n");
  std::printf("\nCell histogram:\n%s",
              netlist::format_kind_histogram(*unit.circuit).c_str());
  return 0;
}
