// Table II reproduction: latency, area and critical path of the 64x64
// radix-4 Booth multiplier (combinational baseline).
#include "bench_common.h"
#include "mult/multiplier.h"
#include "netlist/power.h"
#include "netlist/report.h"
#include "netlist/timing.h"

using namespace mfm;

int main() {
  bench::header("Table II -- 64x64 radix-4 multiplier: latency, area, "
                "critical path",
                "Table II (Sec. II-A)");
  const auto& lib = netlist::TechLib::lp45();
  const auto r4 = mult::build_radix4_64();
  const auto r16 = mult::build_radix16_64();
  netlist::Sta sta4(*r4.circuit, lib);
  netlist::Sta sta16(*r16.circuit, lib);
  netlist::PowerModel pm4(*r4.circuit, lib);
  netlist::PowerModel pm16(*r16.circuit, lib);

  std::printf("\nCritical path by block [ps] (paper: PPGEN 313, TREE 739, "
              "CPA 454 = 1506):\n");
  bench::Table cp;
  cp.row({"block", "measured [ps]", "gates on path"});
  for (const auto& s : sta4.critical_path(2).segments)
    cp.row({s.module, bench::fmt("%.0f", s.delay_ps),
            std::to_string(s.gates)});
  cp.print();

  std::printf("\nSummary (paper values in parentheses):\n");
  bench::Table t;
  t.row({"metric", "measured", "paper"});
  t.row({"latency [ns]", bench::fmt("%.3f", sta4.max_delay_ps() / 1000.0),
         "1.506"});
  t.row({"latency [FO4]", bench::fmt("%.1f", sta4.max_delay_fo4()), "23"});
  t.row({"area [um^2]", bench::fmt("%.0f", pm4.area_um2()), "60204"});
  t.row({"area [NAND2]", bench::fmt("%.0f", pm4.area_nand2()), "56900"});
  t.row({"partial products", std::to_string(r4.pp_rows), "33"});
  t.print();

  std::printf("\nRadix-4 vs radix-16 (paper Sec. II-A: radix-4 ~20%% faster,"
              " ~18%% larger):\n");
  bench::Table c;
  c.row({"ratio", "measured", "paper"});
  c.row({"delay r4/r16",
         bench::fmt("%.2f", sta4.max_delay_ps() / sta16.max_delay_ps()),
         "0.81"});
  c.row({"area r4/r16",
         bench::fmt("%.2f", pm4.area_nand2() / pm16.area_nand2()), "1.19"});
  c.print();
  std::printf(
      "\nNote: the delay ratio reproduces; the area ratio comes out near\n"
      "parity in our abstract library (see EXPERIMENTS.md for discussion).\n");
  return 0;
}
