// google-benchmark microbenchmarks of the software layers: the bit-exact
// MfModel (the library's fast functional API), the IEEE soft-float
// reference, and the two netlist simulators.
#include <benchmark/benchmark.h>

#include <random>

#include "fp/softfloat.h"
#include "mf/mf_model.h"
#include "mf/mf_unit.h"
#include "mult/multiplier.h"
#include "netlist/compiled.h"
#include "netlist/sim_event.h"
#include "netlist/sim_level.h"
#include "netlist/sim_pack.h"

using namespace mfm;

namespace {

std::mt19937_64& rng() {
  static std::mt19937_64 r(7);
  return r;
}

std::uint64_t rand_fp64() {
  return ((rng()() & 1) << 63) | ((512 + rng()() % 1024) << 52) |
         (rng()() & ((1ull << 52) - 1));
}

void BM_MfModelInt64(benchmark::State& state) {
  std::uint64_t x = rng()(), y = rng()();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mf::int64_mul(x, y));
    x += 0x9E3779B97F4A7C15ull;
    y ^= x >> 7;
  }
}
BENCHMARK(BM_MfModelInt64);

void BM_MfModelFp64(benchmark::State& state) {
  std::uint64_t a = rand_fp64(), b = rand_fp64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mf::fp64_mul(a, b));
    a = (a & ~0xFFFFull) | (b & 0xFFFF);
    b ^= a << 1 >> 13;
    b = (b & ~(0x7FFull << 52)) | (900ull << 52);
    a = (a & ~(0x7FFull << 52)) | (1100ull << 52);
  }
}
BENCHMARK(BM_MfModelFp64);

void BM_MfModelFp32Dual(benchmark::State& state) {
  std::uint32_t ah = 0x40490FDB, al = 0x3F800000;
  std::uint32_t bh = 0x3FC00000, bl = 0x41200000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mf::fp32_mul_dual(ah, al, bh, bl));
    al += 0x55;
    bh ^= al & 0x7FFFFF;
  }
}
BENCHMARK(BM_MfModelFp32Dual);

void BM_SoftFloatMul64(benchmark::State& state) {
  std::uint64_t a = rand_fp64(), b = rand_fp64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp::multiply(a, b, fp::kBinary64));
    a ^= b >> 3;
    a = (a & ~(0x7FFull << 52)) | (1000ull << 52);
  }
}
BENCHMARK(BM_SoftFloatMul64);

void BM_LevelSimRadix16(benchmark::State& state) {
  static const auto unit = mult::build_radix16_64();
  netlist::LevelSim sim(*unit.circuit);
  std::uint64_t x = rng()(), y = rng()();
  for (auto _ : state) {
    sim.set_bus(unit.x, x);
    sim.set_bus(unit.y, y);
    sim.eval();
    benchmark::DoNotOptimize(sim.read_bus(unit.p));
    x += 0x9E3779B97F4A7C15ull;
    y ^= x;
  }
  state.SetLabel(std::to_string(unit.circuit->size()) + " gates");
}
BENCHMARK(BM_LevelSimRadix16);

void BM_EventSimRadix16(benchmark::State& state) {
  static const auto unit = mult::build_radix16_64();
  netlist::EventSim sim(*unit.circuit, netlist::TechLib::lp45());
  std::uint64_t x = rng()(), y = rng()();
  for (auto _ : state) {
    sim.set_bus(unit.x, x);
    sim.set_bus(unit.y, y);
    sim.cycle();
    benchmark::DoNotOptimize(sim.read_bus(unit.p));
    x += 0x9E3779B97F4A7C15ull;
    y ^= x;
  }
}
BENCHMARK(BM_EventSimRadix16);

// LevelSim vs PackSim on the combinational mf unit: both count
// items_per_second in VECTORS/s, so the per-pass 64-lane win of the
// bit-parallel simulator shows up directly in the report.
void BM_LevelSimMfUnitVectors(benchmark::State& state) {
  static const auto unit = [] {
    mf::MfOptions opt;
    opt.pipeline = mf::MfPipeline::Combinational;
    return mf::build_mf_unit(opt);
  }();
  static const netlist::CompiledCircuit cc(*unit.circuit);
  netlist::LevelSim sim(cc);
  std::uint64_t a = rand_fp64(), b = rand_fp64();
  for (auto _ : state) {
    sim.set_bus(unit.a, a);
    sim.set_bus(unit.b, b);
    sim.set_bus(unit.frmt, 1);
    sim.eval();
    benchmark::DoNotOptimize(sim.read_bus(unit.ph));
    a ^= b << 5;
    a = (a & ~(0x7FFull << 52)) | (1000ull << 52);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(unit.circuit->size()) + " gates, 1 vector/pass");
}
BENCHMARK(BM_LevelSimMfUnitVectors);

void BM_PackSimMfUnitVectors(benchmark::State& state) {
  static const auto unit = [] {
    mf::MfOptions opt;
    opt.pipeline = mf::MfPipeline::Combinational;
    return mf::build_mf_unit(opt);
  }();
  static const netlist::CompiledCircuit cc(*unit.circuit);
  netlist::PackSim sim(cc);
  std::uint64_t a = rand_fp64(), b = rand_fp64();
  for (auto _ : state) {
    for (int lane = 0; lane < netlist::PackSim::kLanes; ++lane) {
      sim.set_bus(unit.a, lane, a);
      sim.set_bus(unit.b, lane, b);
      sim.set_bus(unit.frmt, lane, 1);
      a ^= b << 5;
      a = (a & ~(0x7FFull << 52)) | (1000ull << 52);
    }
    sim.eval();
    benchmark::DoNotOptimize(sim.read_bus(unit.ph, 0));
  }
  // One pass evaluates 64 independent vectors.
  state.SetItemsProcessed(state.iterations() * netlist::PackSim::kLanes);
  state.SetLabel(std::to_string(unit.circuit->size()) +
                 " gates, 64 vectors/pass");
}
BENCHMARK(BM_PackSimMfUnitVectors);

void BM_EventSimMfUnitPipelined(benchmark::State& state) {
  static const auto unit = [] { return mf::build_mf_unit(); }();
  netlist::EventSim sim(*unit.circuit, netlist::TechLib::lp45());
  std::uint64_t a = rand_fp64(), b = rand_fp64();
  for (auto _ : state) {
    sim.set_bus(unit.a, a);
    sim.set_bus(unit.b, b);
    sim.set_bus(unit.frmt, 1);
    sim.cycle();
    benchmark::DoNotOptimize(sim.read_bus(unit.ph));
    a ^= b << 5;
    a = (a & ~(0x7FFull << 52)) | (1000ull << 52);
  }
}
BENCHMARK(BM_EventSimMfUnitPipelined);

}  // namespace

BENCHMARK_MAIN();
