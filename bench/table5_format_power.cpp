// Table V reproduction: power and power efficiency of the pipelined
// multi-format multiplier for int64 / binary64 / binary32-dual /
// binary32-single operation streams.
#include "bench_common.h"
#include "mf/mf_unit.h"
#include "netlist/timing.h"
#include "power/measure.h"

using namespace mfm;

int main() {
  bench::header("Table V -- power and power efficiency per format "
                "(pipelined MFmult)",
                "Table V (Sec. III-E)");
  const int vectors = power::bench_vectors(250);
  const int threads = power::bench_threads();
  std::printf("\nMonte-Carlo vectors per format: %d "
              "(override with MFM_BENCH_VECTORS)\n", vectors);
  std::printf("worker threads: %d (override with MFM_BENCH_THREADS; "
              "results are thread-count invariant)\n", threads);

  const mf::MfUnit unit = mf::build_mf_unit();
  netlist::Sta sta(*unit.circuit, netlist::TechLib::lp45());
  const double fmax = 1e6 / sta.max_delay_ps();
  std::printf("unit fmax: %.0f MHz (paper: 880 MHz)\n\n", fmax);

  struct RowSpec {
    const char* name;
    power::Workload workload;
    int ops_per_cycle;
    const char* paper_mw100;
    const char* paper_eff;
  };
  const RowSpec rows[] = {
      {"int64", power::Workload::Uniform64, 1, "8.90", "11.24 GOPS/W"},
      {"binary64", power::Workload::Fp64Random, 1, "7.20", "13.89"},
      {"binary32 (dual)", power::Workload::Fp32DualRandom, 2, "5.17",
       "38.68"},
      {"binary32 (single)", power::Workload::Fp32SingleRandom, 1, "3.77",
       "26.53"},
  };

  bench::Table t;
  t.row({"format", "mW @100MHz", "(paper)", "glitch mW", "mW @fmax",
         "GFLOPS", "GFLOPS/W", "(paper)"});
  double mw100[4];
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double compile_s = 0.0;
  int i = 0;
  for (const RowSpec& r : rows) {
    const auto p = power::measure_mf_parallel(unit, r.workload, vectors,
                                              fmax, r.ops_per_cycle, threads);
    mw100[i++] = p.mw_100;
    events += p.events;
    wall_s += p.wall_s;
    compile_s += p.compile_s;
    t.row({r.name, bench::fmt("%.2f", p.mw_100), r.paper_mw100,
           bench::fmt("%.2f", p.at_100mhz.glitch_mw),
           bench::fmt("%.1f", p.mw_fmax), bench::fmt("%.2f", p.gflops),
           bench::fmt("%.1f", p.gflops_per_w), r.paper_eff});
  }
  t.print();
  std::printf("\nsimulation throughput: %.2f Mevents/s "
              "(%llu events in %.2f s, %d threads)\n",
              wall_s > 0.0 ? events / wall_s / 1e6 : 0.0,
              static_cast<unsigned long long>(events), wall_s, threads);
  std::printf("circuit compile time: %.3f s (one CompiledCircuit per "
              "measurement, shared by all shards)\n", compile_s);

  std::printf("\nActivity ratios (paper Sec. III-E):\n");
  bench::Table a;
  a.row({"ratio", "measured", "paper"});
  a.row({"binary64 / int64", bench::fmt("%.2f", mw100[1] / mw100[0]),
         "0.81"});
  a.row({"binary32 dual / int64", bench::fmt("%.2f", mw100[2] / mw100[0]),
         "0.58"});
  a.row({"binary32 single / dual", bench::fmt("%.2f", mw100[3] / mw100[2]),
         "0.73"});
  a.print();
  std::printf(
      "\nShape checks vs paper: power ordering int64 > binary64 > dual >\n"
      "single reproduces, binary64/int64 tracks the 68%% significand\n"
      "activity argument, and dual binary32 is the best GFLOPS/W point.\n"
      "The glitch column is the hazard-transition share of dynamic power\n"
      "(EventSim functional/glitch split); narrower formats idle more of\n"
      "the array, so glitch power falls with the format width too.\n");
  return 0;
}
